"""Tests for node-level faults, pilot resubmission and retry policies."""

import pytest

from repro.analytics.faults import fault_recovery_summary
from repro.cluster.faults import NodeFaultModel, NodeFaultProcess
from repro.core.kernel_plugin import Kernel
from repro.core.patterns import BagOfTasks
from repro.core.resource_handle import ResourceHandle
from repro.eventsim import RandomStreams, Simulator
from repro.exceptions import ConfigurationError, PatternError
from repro.pilot.agent.slots import make_slot_scheduler
from repro.pilot.faults import NodeFailure, PilotFailure
from repro.pilot.retry import RetryPolicy
from repro.pilot.states import UnitState


class SleepBag(BagOfTasks):
    def __init__(self, size, duration=100, policy=None):
        super().__init__(size=size)
        self.duration = duration
        self.retry_policy = policy

    def task(self, instance):
        kernel = Kernel(name="misc.sleep")
        kernel.arguments = [f"--duration={self.duration}"]
        return kernel


def run_sim(pattern, cores=64, walltime=600, seed=0, **kwargs):
    handle = ResourceHandle(
        "xsede.comet", cores=cores, walltime=walltime, mode="sim",
        seed=seed, **kwargs,
    )
    handle.allocate()
    try:
        handle.run(pattern)
    finally:
        handle.deallocate()
    return handle


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_cap=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=-0.1)

    def test_should_retry_counts_attempts(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(0)
        assert policy.should_retry(2)
        assert not policy.should_retry(3)
        assert not policy.should_retry(7)
        assert policy.retries == 2

    def test_delay_is_exponential_and_capped(self):
        policy = RetryPolicy(
            max_attempts=10, backoff_base=2.0, backoff_factor=3.0,
            backoff_cap=20.0,
        )
        assert policy.delay(1) == 2.0
        assert policy.delay(2) == 6.0
        assert policy.delay(3) == 18.0
        assert policy.delay(4) == 20.0  # capped, not 54

    def test_zero_base_means_no_delay(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.0)
        assert all(policy.delay(n) == 0.0 for n in range(1, 6))

    def test_jittered_delay_without_rng_equals_delay(self):
        policy = RetryPolicy(backoff_base=4.0, jitter=0.5)
        assert policy.jittered_delay(2) == policy.delay(2)

    def test_jittered_delay_bounds(self):
        policy = RetryPolicy(
            max_attempts=10, backoff_base=3.0, backoff_factor=2.0,
            backoff_cap=1000.0, jitter=0.25,
        )
        rng = RandomStreams(7).get("retry_backoff")
        for attempt in range(1, 8):
            base = policy.delay(attempt)
            for _ in range(50):
                value = policy.jittered_delay(attempt, rng)
                assert base <= value <= base * 1.25

    def test_from_legacy_retries(self):
        assert RetryPolicy.from_legacy_retries(0) is None
        assert RetryPolicy.from_legacy_retries(-1) is None
        policy = RetryPolicy.from_legacy_retries(3)
        assert policy.max_attempts == 4
        assert policy.delay(2) == 0.0


class TestNodeFaultModel:
    def test_enabled_flag(self):
        assert not NodeFaultModel(0.0).enabled
        assert NodeFaultModel(10.0).enabled

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NodeFaultModel(mtbf=-1.0)
        with pytest.raises(ConfigurationError):
            NodeFaultModel(mtbf=10.0, repair_time=0.0)

    def test_process_rejects_disabled_model(self):
        sim = Simulator()
        rng = RandomStreams(0).get("node_faults")
        with pytest.raises(ConfigurationError):
            NodeFaultProcess(
                sim, rng, 2, NodeFaultModel(0.0),
                on_fail=lambda n: None, on_repair=lambda n: None,
            )


class TestNodeFaultProcess:
    def _make(self, seed=0, nnodes=3, mtbf=50.0, repair=20.0):
        sim = Simulator()
        rng = RandomStreams(seed).get("node_faults")
        fails, repairs = [], []
        proc = NodeFaultProcess(
            sim, rng, nnodes, NodeFaultModel(mtbf, repair),
            on_fail=lambda n: fails.append((sim.now, n)),
            on_repair=lambda n: repairs.append((sim.now, n)),
        )
        return sim, proc, fails, repairs

    def test_fail_repair_cycle(self):
        sim, proc, fails, repairs = self._make()
        proc.start()
        sim.run(until=200.0)
        assert fails, "mtbf 50 over 200s must fail at least once"
        assert repairs, "repair_time 20 must complete within the horizon"
        # Every repair follows its failure by exactly the repair interval.
        for (t_fail, node), (t_rep, rep_node) in zip(fails, repairs):
            assert rep_node == node
            assert t_rep == pytest.approx(t_fail + 20.0)

    def test_down_nodes_tracking(self):
        sim, proc, fails, _ = self._make(repair=1000.0)
        proc.start()
        sim.run(until=200.0)
        assert proc.down_nodes == {node for _, node in fails}

    def test_stop_cancels_everything(self):
        sim, proc, fails, _ = self._make()
        proc.start()
        sim.run(until=60.0)
        count = len(fails)
        proc.stop()
        sim.run(until=10_000.0)
        assert len(fails) == count
        assert sim.pending == 0

    def test_deterministic_under_seed(self):
        sim_a, proc_a, fails_a, _ = self._make(seed=5)
        proc_a.start()
        sim_a.run(until=500.0)
        sim_b, proc_b, fails_b, _ = self._make(seed=5)
        proc_b.start()
        sim_b.run(until=500.0)
        assert fails_a == fails_b
        sim_c, proc_c, fails_c, _ = self._make(seed=6)
        proc_c.start()
        sim_c.run(until=500.0)
        assert fails_a != fails_c


class TestSlotSchedulerNodes:
    def test_node_mapping(self):
        slots = make_slot_scheduler("contiguous", 8, cores_per_node=4)
        assert slots.nnodes == 2
        assert slots.node_of(0) == 0
        assert slots.node_of(7) == 1
        assert list(slots.node_slots(1)) == [4, 5, 6, 7]

    def test_single_node_without_cores_per_node(self):
        slots = make_slot_scheduler("scattered", 8)
        assert slots.nnodes == 1
        assert slots.node_of(7) == 0

    def test_fail_node_removes_free_capacity(self):
        slots = make_slot_scheduler("contiguous", 8, cores_per_node=4)
        slots.fail_node(0)
        assert slots.free_cores == 4
        assert slots.offline_nodes == {0}
        got = slots.alloc(4)
        assert got is not None and all(s >= 4 for s in got)
        assert slots.alloc(1) is None
        slots.dealloc(got)
        slots.repair_node(0)
        assert slots.free_cores == 8 and slots.offline_nodes == set()

    def test_dealloc_onto_offline_node_stays_out_of_pool(self):
        slots = make_slot_scheduler("contiguous", 8, cores_per_node=4)
        got = slots.alloc(4)  # lands on node 0
        slots.fail_node(0)
        slots.dealloc(got)
        assert slots.free_cores == 4  # only node 1
        slots.repair_node(0)
        assert slots.free_cores == 8

    def test_eligible_cores_ignores_occupancy_and_outage(self):
        slots = make_slot_scheduler("scattered", 8, cores_per_node=4)
        slots.alloc(6)
        slots.fail_node(1)
        assert slots.eligible_cores() == 8
        assert slots.eligible_cores({0}) == 4
        assert slots.eligible_cores({0, 1}) == 0

    def test_alloc_avoids_nodes(self):
        slots = make_slot_scheduler("scattered", 8, cores_per_node=4)
        got = slots.alloc(4, avoid_nodes={0})
        assert got is not None
        assert all(slots.node_of(s) == 1 for s in got)
        assert slots.alloc(1, avoid_nodes={0, 1}) is None


GENEROUS = RetryPolicy(
    max_attempts=8, backoff_base=0.0, exclude_failed_nodes=False
)


class TestNodeFailureRuns:
    def test_node_crash_requeues_and_completes(self):
        pattern = SleepBag(64)
        handle = run_sim(
            pattern, node_mtbf=120.0, node_repair_time=120.0,
            retry_policy=GENEROUS,
        )
        assert all(u.state is UnitState.DONE for u in pattern.units)
        prof = handle.profile
        assert prof.events("node_fail")
        assert prof.events("node_repair")
        kills = prof.events("unit_node_kill")
        requeues = prof.events("unit_requeue")
        assert len(kills) == len(requeues) > 0
        assert all(ev.attrs["wasted"] >= 0 for ev in kills)
        assert max(u.attempts for u in pattern.units) > 1

    def test_kills_fail_pattern_without_policy(self):
        with pytest.raises(PatternError, match="NodeFailure"):
            run_sim(SleepBag(64), node_mtbf=150.0, node_repair_time=120.0)

    def test_retry_exhaustion_fails_not_hangs(self):
        policy = RetryPolicy(
            max_attempts=2, backoff_base=0.0, exclude_failed_nodes=False
        )
        with pytest.raises(PatternError, match="NodeFailure"):
            run_sim(
                SleepBag(64), node_mtbf=60.0, node_repair_time=120.0,
                retry_policy=policy,
            )

    def test_exclusion_on_single_node_fails_fast(self):
        """With the only node excluded the requeued unit cannot wait forever."""
        policy = RetryPolicy(
            max_attempts=8, backoff_base=0.0, exclude_failed_nodes=True
        )
        with pytest.raises(PatternError, match="NodeFailure"):
            run_sim(
                SleepBag(16), cores=24, node_mtbf=60.0,
                node_repair_time=120.0, retry_policy=policy,
            )

    def test_clean_run_emits_no_fault_events(self):
        pattern = SleepBag(16)
        handle = run_sim(pattern, node_mtbf=0.0, retry_policy=GENEROUS)
        prof = handle.profile
        for name in (
            "node_fail", "node_repair", "unit_node_kill", "unit_requeue",
            "pilot_fault", "pilot_resubmit", "agent_suspend",
        ):
            assert not prof.events(name)
        assert all(u.state is UnitState.DONE for u in pattern.units)

    def test_killed_units_carry_node_failure(self):
        policy = RetryPolicy(
            max_attempts=2, backoff_base=0.0, exclude_failed_nodes=False
        )
        pattern = SleepBag(64)
        with pytest.raises(PatternError):
            run_sim(
                pattern, node_mtbf=60.0, node_repair_time=120.0,
                retry_policy=policy,
            )
        failed = [u for u in pattern.units if u.state is UnitState.FAILED]
        assert failed
        assert all(isinstance(u.exception, NodeFailure) for u in failed)

    def test_backoff_policy_charges_delay(self):
        backoff = RetryPolicy(
            max_attempts=8, backoff_base=5.0, backoff_factor=2.0,
            backoff_cap=120.0, exclude_failed_nodes=False,
        )
        pattern = SleepBag(64)
        handle = run_sim(
            pattern, node_mtbf=150.0, node_repair_time=120.0,
            retry_policy=backoff,
        )
        assert all(u.state is UnitState.DONE for u in pattern.units)
        requeues = handle.profile.events("unit_requeue")
        assert requeues and all(ev.attrs["delay"] > 0 for ev in requeues)

    def test_local_mode_rejects_node_faults(self):
        with pytest.raises(ConfigurationError, match="simulated"):
            ResourceHandle(
                "local.localhost", 2, 5, mode="local", node_mtbf=100.0
            ).allocate()

    def test_negative_knobs_rejected(self):
        with pytest.raises(ConfigurationError):
            run_sim(SleepBag(1), node_mtbf=-1.0)
        with pytest.raises(ConfigurationError):
            run_sim(SleepBag(1), pilot_mtbf=-1.0)
        with pytest.raises(ConfigurationError):
            run_sim(SleepBag(1), max_pilot_resubmits=-1)


class TestPilotResubmission:
    def test_pilot_fault_resubmits_and_completes(self):
        pattern = SleepBag(64)
        handle = run_sim(
            pattern, cores=32, pilot_mtbf=150.0, max_pilot_resubmits=10,
            retry_policy=GENEROUS,
        )
        assert all(u.state is UnitState.DONE for u in pattern.units)
        prof = handle.profile
        faults = prof.events("pilot_fault")
        resubmits = prof.events("pilot_resubmit")
        assert faults and resubmits
        assert len(resubmits) <= len(faults)
        # Each resubmission re-bootstraps the agent: one agent_start per life.
        agent_starts = prof.events("agent_start")
        assert len(agent_starts) == len(resubmits) + 1

    def test_resubmission_reenters_queue(self):
        pattern = SleepBag(64)
        handle = run_sim(
            pattern, cores=32, pilot_mtbf=150.0, max_pilot_resubmits=10,
            retry_policy=GENEROUS,
        )
        prof = handle.profile
        for ev in prof.events("pilot_resubmit"):
            later = [
                s for s in prof.events("agent_start", ev.uid)
                if s.time > ev.time
            ]
            # The replacement pays submit latency + queue wait + bootstrap,
            # so the next agent_start is strictly after the resubmission.
            assert later and min(s.time for s in later) > ev.time

    def test_in_flight_units_requeue_on_pilot_death(self):
        pattern = SleepBag(64)
        handle = run_sim(
            pattern, cores=32, pilot_mtbf=150.0, max_pilot_resubmits=10,
            retry_policy=GENEROUS,
        )
        kills = handle.profile.events("unit_pilot_kill")
        suspends = handle.profile.events("agent_suspend")
        assert suspends
        assert kills, "pilot died mid-run: some units must have been executing"

    def test_no_resubmit_budget_fails_pattern(self):
        with pytest.raises(PatternError):
            run_sim(
                SleepBag(64), cores=32, pilot_mtbf=60.0,
                max_pilot_resubmits=0, retry_policy=GENEROUS,
            )

    def test_pilot_faults_disabled_by_default(self):
        pattern = SleepBag(8, duration=10)
        handle = run_sim(pattern, cores=16)
        assert not handle.profile.events("pilot_fault")
        assert all(u.state is UnitState.DONE for u in pattern.units)


class TestFaultAnalytics:
    def test_summary_counts_match_events(self):
        pattern = SleepBag(64)
        handle = run_sim(
            pattern, node_mtbf=150.0, node_repair_time=120.0,
            retry_policy=GENEROUS,
        )
        prof = handle.profile
        summary = fault_recovery_summary(prof)
        assert summary.node_failures == len(prof.events("node_fail"))
        assert summary.node_repairs == len(prof.events("node_repair"))
        assert summary.units_killed == len(prof.events("unit_node_kill"))
        assert summary.unit_requeues == len(prof.events("unit_requeue"))
        assert summary.wasted_execution > 0
        assert summary.node_downtime > 0
        assert summary.overhead >= summary.wasted_execution

    def test_clean_summary_is_all_zero(self):
        pattern = SleepBag(8, duration=10)
        handle = run_sim(pattern, cores=16)
        summary = fault_recovery_summary(handle.profile)
        assert summary.overhead == 0.0
        assert all(v == 0 for v in summary.as_dict().values())

    def test_breakdown_reports_fault_overhead(self):
        from repro.core.profiler import breakdown_from_profile

        pattern = SleepBag(64)
        handle = run_sim(
            pattern, node_mtbf=150.0, node_repair_time=120.0,
            retry_policy=GENEROUS,
        )
        breakdown = breakdown_from_profile(handle.profile, pattern)
        assert breakdown.fault_overhead > 0
        assert breakdown.as_dict()["fault_overhead"] == breakdown.fault_overhead

    def test_resubmit_downtime_accounted(self):
        pattern = SleepBag(64)
        handle = run_sim(
            pattern, cores=32, pilot_mtbf=150.0, max_pilot_resubmits=10,
            retry_policy=GENEROUS,
        )
        summary = fault_recovery_summary(handle.profile)
        assert summary.pilot_resubmits > 0
        assert summary.resubmit_downtime > 0


class TestPatternPolicyIntegration:
    def test_pattern_retry_policy_wins_over_legacy(self):
        pattern = SleepBag(8, duration=10)
        pattern.max_task_retries = 0
        pattern.retry_policy = RetryPolicy(max_attempts=5)
        from repro.core.drivers.base import PatternDriver

        handle = run_sim(pattern, cores=16)
        assert all(u.state is UnitState.DONE for u in pattern.units)

    def test_driver_adapts_legacy_retries(self):
        """max_task_retries still absorbs task faults through the adapter."""
        pattern = SleepBag(32, duration=100)
        pattern.max_task_retries = 10
        handle = run_sim(pattern, cores=32, fault_rate=0.3, seed=3)
        done = [u for u in pattern.units if u.state is UnitState.DONE]
        assert len(done) == 32
        retries = handle.profile.events("entk_task_retry")
        assert retries
        assert all(ev.attrs["delay"] == 0.0 for ev in retries)

    def test_pattern_policy_backoff_delays_task_retries(self):
        pattern = SleepBag(32, duration=100)
        pattern.retry_policy = RetryPolicy(
            max_attempts=11, backoff_base=2.0, backoff_factor=2.0,
            backoff_cap=30.0,
        )
        handle = run_sim(pattern, cores=32, fault_rate=0.3, seed=3)
        done = [u for u in pattern.units if u.state is UnitState.DONE]
        assert len(done) == 32
        retries = handle.profile.events("entk_task_retry")
        assert retries and all(ev.attrs["delay"] > 0 for ev in retries)
