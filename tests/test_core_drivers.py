"""Tests of the pattern drivers' ordering rules, in both execution modes.

These are the paper-critical invariants (DESIGN.md §6): pipeline stage
order, SAL barriers, EE exchange coupling.
"""

import pytest

from repro.core.kernel_plugin import Kernel
from repro.core.patterns import (
    BagOfTasks,
    EnsembleExchange,
    EnsembleOfPipelines,
    PatternSequence,
    SimulationAnalysisLoop,
)
from repro.exceptions import PatternError
from repro.pilot.states import UnitState


def sleep_kernel(duration=0.0) -> Kernel:
    kernel = Kernel(name="misc.sleep")
    kernel.arguments = [f"--duration={duration}"]
    return kernel


class SleepPipelines(EnsembleOfPipelines):
    def stage(self, stage_number, instance):
        return sleep_kernel()


class SleepSAL(SimulationAnalysisLoop):
    def simulation_stage(self, iteration, instance):
        return sleep_kernel()

    def analysis_stage(self, iteration, instance):
        return sleep_kernel()


class SleepEE(EnsembleExchange):
    def simulation_stage(self, iteration, instance):
        return sleep_kernel()

    def exchange_stage(self, iteration, instances):
        return sleep_kernel()


def by_tag(units, **criteria):
    out = []
    for unit in units:
        tags = unit.description.tags
        if all(tags.get(k) == v for k, v in criteria.items()):
            out.append(unit)
    return out


# ---------------------------------------------------------------------------
# Ensemble of pipelines
# ---------------------------------------------------------------------------


class TestPipelineDriver:
    @pytest.mark.parametrize("mode", ["local", "sim"])
    def test_stage_order_within_pipeline(self, mode, local_handle, sim_handle_factory):
        handle = local_handle if mode == "local" else sim_handle_factory()
        pattern = SleepPipelines(ensemble_size=3, pipeline_size=3)
        handle.run(pattern)
        assert len(pattern.units) == 9
        for instance in (1, 2, 3):
            stages = {
                u.description.tags["stage"]: u
                for u in by_tag(pattern.units, instance=instance)
            }
            for k in (1, 2):
                end_k = stages[k].timestamps["AGENT_STAGING_OUTPUT"]
                start_next = stages[k + 1].timestamps["EXECUTING"]
                assert start_next >= end_k, (
                    f"stage {k+1} of pipeline {instance} started before "
                    f"stage {k} ended"
                )

    def test_pipelines_do_not_synchronize(self, sim_handle_factory):
        """A slow pipeline must not block fast pipelines' later stages."""
        class UnevenPipelines(EnsembleOfPipelines):
            def stage(self, stage_number, instance):
                # pipeline 1 is slow in stage 1, others instant.
                duration = 500.0 if (instance == 1 and stage_number == 1) else 1.0
                return sleep_kernel(duration)

        handle = sim_handle_factory(cores=8)
        pattern = UnevenPipelines(ensemble_size=3, pipeline_size=2)
        handle.run(pattern)
        slow_stage1_end = by_tag(pattern.units, instance=1, stage=1)[0].timestamps[
            "AGENT_STAGING_OUTPUT"
        ]
        for instance in (2, 3):
            fast_stage2 = by_tag(pattern.units, instance=instance, stage=2)[0]
            assert fast_stage2.timestamps["EXECUTING"] < slow_stage1_end

    def test_failure_aborts_only_its_pipeline(self, local_handle):
        class FailingPipeline(EnsembleOfPipelines):
            def stage(self, stage_number, instance):
                if instance == 1 and stage_number == 1:
                    kernel = Kernel(name="misc.ccount")  # missing input -> fails
                    kernel.arguments = ["--inputfile=nope.txt",
                                        "--outputfile=out.txt"]
                    return kernel
                return sleep_kernel()

        pattern = FailingPipeline(ensemble_size=3, pipeline_size=2)
        with pytest.raises(PatternError, match="failed"):
            local_handle.run(pattern)
        # Pipeline 1 stopped at stage 1; pipelines 2 and 3 completed stage 2.
        assert not by_tag(pattern.units, instance=1, stage=2)
        for instance in (2, 3):
            (stage2,) = by_tag(pattern.units, instance=instance, stage=2)
            assert stage2.state is UnitState.DONE

    def test_bag_of_tasks_runs_all(self, local_handle):
        class Bag(BagOfTasks):
            def task(self, instance):
                return sleep_kernel()

        pattern = Bag(size=5)
        local_handle.run(pattern)
        assert len(pattern.units) == 5
        assert all(u.state is UnitState.DONE for u in pattern.units)


# ---------------------------------------------------------------------------
# Simulation-analysis loop
# ---------------------------------------------------------------------------


class TestSALDriver:
    @pytest.mark.parametrize("mode", ["local", "sim"])
    def test_global_barriers(self, mode, local_handle, sim_handle_factory):
        handle = local_handle if mode == "local" else sim_handle_factory()
        pattern = SleepSAL(iterations=2, simulation_instances=3,
                           analysis_instances=2)
        handle.run(pattern)
        assert len(pattern.units) == 2 * (3 + 2)
        for iteration in (1, 2):
            sims = by_tag(pattern.units, phase="sim", iteration=iteration)
            anas = by_tag(pattern.units, phase="ana", iteration=iteration)
            last_sim_end = max(u.timestamps["AGENT_STAGING_OUTPUT"] for u in sims)
            first_ana_start = min(u.timestamps["EXECUTING"] for u in anas)
            assert first_ana_start >= last_sim_end
            if iteration == 2:
                prev_ana_end = max(
                    u.timestamps["AGENT_STAGING_OUTPUT"]
                    for u in by_tag(pattern.units, phase="ana", iteration=1)
                )
                first_sim_start = min(u.timestamps["EXECUTING"] for u in sims)
                assert first_sim_start >= prev_ana_end

    def test_pre_and_post_loop(self, local_handle):
        class WithHooks(SleepSAL):
            def pre_loop(self):
                return sleep_kernel()

            def post_loop(self):
                return sleep_kernel()

        pattern = WithHooks(iterations=1, simulation_instances=2)
        local_handle.run(pattern)
        phases = [u.description.tags["phase"] for u in pattern.units]
        assert phases.count("pre_loop") == 1
        assert phases.count("post_loop") == 1
        pre = by_tag(pattern.units, phase="pre_loop")[0]
        first_sim = min(
            u.timestamps["EXECUTING"]
            for u in by_tag(pattern.units, phase="sim")
        )
        assert first_sim >= pre.timestamps["AGENT_STAGING_OUTPUT"]

    def test_failure_aborts_loop(self, local_handle):
        class FailingAnalysis(SleepSAL):
            def analysis_stage(self, iteration, instance):
                kernel = Kernel(name="misc.ccount")
                kernel.arguments = ["--inputfile=missing.txt",
                                    "--outputfile=o.txt"]
                return kernel

        pattern = FailingAnalysis(iterations=3, simulation_instances=2)
        with pytest.raises(PatternError):
            local_handle.run(pattern)
        # No iteration-2 simulations were ever submitted.
        assert not by_tag(pattern.units, phase="sim", iteration=2)


# ---------------------------------------------------------------------------
# Ensemble exchange
# ---------------------------------------------------------------------------


class TestEEDriver:
    @pytest.mark.parametrize("mode", ["local", "sim"])
    def test_pairwise_exchange_couples_pairs(self, mode, local_handle,
                                             sim_handle_factory):
        handle = local_handle if mode == "local" else sim_handle_factory()
        pattern = SleepEE(ensemble_size=4, iterations=2,
                          exchange_mode="pairwise")
        handle.run(pattern)
        sims = by_tag(pattern.units, phase="sim")
        exchanges = by_tag(pattern.units, phase="exchange")
        assert len(sims) == 8
        # Matching pairs ladder-adjacent members by arrival: under
        # simulation arrivals are deterministic (2 pairs x 2 iterations);
        # locally, arrival order may strand non-adjacent members (1, 4),
        # who then legitimately skip (quiescence rule) — at least one
        # pair must still form per iteration.
        if mode == "sim":
            assert len(exchanges) == 4
        else:
            assert 2 <= len(exchanges) <= 4
        for exchange in exchanges:
            pair = exchange.description.tags["instances"]
            assert len(pair) == 2
            iteration = exchange.description.tags["iteration"]
            for member in pair:
                (sim,) = by_tag(sims, iteration=iteration, instance=member)
                assert (
                    exchange.timestamps["EXECUTING"]
                    >= sim.timestamps["AGENT_STAGING_OUTPUT"]
                )

    def test_pairwise_no_global_barrier(self, sim_handle_factory):
        """Fast pair exchanges while a slow member still simulates."""
        class Uneven(SleepEE):
            def simulation_stage(self, iteration, instance):
                return sleep_kernel(900.0 if instance == 3 else 1.0)

        handle = sim_handle_factory(cores=8)
        pattern = Uneven(ensemble_size=4, iterations=1,
                         exchange_mode="pairwise")
        handle.run(pattern)
        (pair12,) = [
            u
            for u in by_tag(pattern.units, phase="exchange")
            if tuple(u.description.tags["instances"]) == (1, 2)
        ]
        slow_sim = by_tag(pattern.units, phase="sim", instance=3)[0]
        assert (
            pair12.timestamps["EXECUTING"]
            < slow_sim.timestamps["AGENT_STAGING_OUTPUT"]
        )

    def test_odd_ensemble_terminates_with_skip(self, local_handle):
        pattern = SleepEE(ensemble_size=5, iterations=2,
                          exchange_mode="pairwise")
        local_handle.run(pattern)
        sims = by_tag(pattern.units, phase="sim")
        # Every member completed every iteration despite the odd one out.
        assert len(sims) == 10
        assert all(u.state is UnitState.DONE for u in pattern.units)

    @pytest.mark.parametrize("mode", ["local", "sim"])
    def test_global_exchange_waits_for_all(self, mode, local_handle,
                                           sim_handle_factory):
        handle = local_handle if mode == "local" else sim_handle_factory()
        pattern = SleepEE(ensemble_size=4, iterations=2,
                          exchange_mode="global")
        handle.run(pattern)
        exchanges = by_tag(pattern.units, phase="exchange")
        assert len(exchanges) == 2  # one per iteration
        for exchange in exchanges:
            iteration = exchange.description.tags["iteration"]
            assert tuple(exchange.description.tags["instances"]) == (1, 2, 3, 4)
            sims = by_tag(pattern.units, phase="sim", iteration=iteration)
            last_sim_end = max(u.timestamps["AGENT_STAGING_OUTPUT"] for u in sims)
            assert exchange.timestamps["EXECUTING"] >= last_sim_end

    def test_failed_member_drops_out(self, local_handle):
        class OneBadMember(SleepEE):
            def simulation_stage(self, iteration, instance):
                if instance == 2 and iteration == 1:
                    kernel = Kernel(name="misc.ccount")
                    kernel.arguments = ["--inputfile=x", "--outputfile=y"]
                    return kernel
                return sleep_kernel()

        pattern = OneBadMember(ensemble_size=4, iterations=2,
                               exchange_mode="global")
        with pytest.raises(PatternError):
            local_handle.run(pattern)
        # Iteration 2 ran with the survivors only.
        iteration2 = by_tag(pattern.units, phase="sim", iteration=2)
        assert {u.description.tags["instance"] for u in iteration2} == {1, 3, 4}


# ---------------------------------------------------------------------------
# Sequence composition
# ---------------------------------------------------------------------------


class TestSequence:
    def test_patterns_run_in_order(self, local_handle):
        class Bag(BagOfTasks):
            def task(self, instance):
                return sleep_kernel()

        first = Bag(size=2)
        second = SleepSAL(iterations=1, simulation_instances=2)
        sequence = PatternSequence([first, second])
        local_handle.run(sequence)
        assert sequence.executed
        first_end = max(u.timestamps["AGENT_STAGING_OUTPUT"] for u in first.units)
        second_start = min(u.timestamps["EXECUTING"] for u in second.units)
        assert second_start >= first_end
        assert len(sequence.units) == len(first.units) + len(second.units)
