"""Tests for kernel plugins, the registry and kernel binding."""

import pytest

from repro.cluster.platforms import get_platform
from repro.core.kernel_plugin import Kernel, KernelPlugin, MachineConfig
from repro.core.kernel_registry import (
    get_kernel_plugin,
    list_kernel_plugins,
    register_kernel,
)
from repro.exceptions import KernelError, NoKernelPluginError


class TestRegistry:
    def test_builtins_are_registered(self):
        names = list_kernel_plugins()
        for expected in (
            "misc.mkfile",
            "misc.ccount",
            "misc.sleep",
            "misc.echo",
            "md.amber",
            "md.gromacs",
            "analysis.coco",
            "analysis.lsdmap",
            "exchange.temperature",
        ):
            assert expected in names

    def test_unknown_kernel_raises_with_hint(self):
        with pytest.raises(NoKernelPluginError, match="known:"):
            get_kernel_plugin("md.namd")

    def test_duplicate_registration_rejected(self):
        cls = get_kernel_plugin("misc.sleep")
        with pytest.raises(KernelError, match="already registered"):
            register_kernel(cls)
        register_kernel(cls, replace=True)

    def test_nameless_plugin_rejected(self):
        class Nameless(KernelPlugin):
            pass

        with pytest.raises(KernelError, match="no name"):
            register_kernel(Nameless)

    def test_custom_kernel_registration_and_use(self):
        class Doubler(KernelPlugin):
            name = "test.doubler"
            required_args = ("value",)

            def execute(self, ctx):
                return 2 * int(ctx.arg("value"))

            def duration(self, cores, platform, args):
                return 1.0

        register_kernel(Doubler, replace=True)
        kernel = Kernel(name="test.doubler")
        kernel.arguments = ["--value=21"]
        description = kernel.bind("local.localhost", get_platform("local.localhost"))
        assert description.name == "test.doubler"


class TestKernelBinding:
    def test_missing_required_args_raise(self):
        kernel = Kernel(name="misc.mkfile")  # requires size and filename
        with pytest.raises(KernelError, match="--size"):
            kernel.bind("local.localhost", get_platform("local.localhost"))

    def test_bind_produces_valid_description(self):
        kernel = Kernel(name="misc.mkfile")
        kernel.arguments = ["--size=100", "--filename=f.txt"]
        description = kernel.bind("xsede.comet", get_platform("xsede.comet"))
        assert description.cores == 1
        assert not description.mpi
        assert description.payload is not None
        assert description.duration_model is not None

    def test_multicore_kernel_is_mpi(self):
        kernel = Kernel(name="md.amber")
        kernel.arguments = ["--nsteps=100"]
        kernel.cores = 16
        description = kernel.bind("xsede.stampede", get_platform("xsede.stampede"))
        assert description.mpi
        assert description.cores == 16

    def test_staging_directives_parsed(self):
        kernel = Kernel(name="misc.ccount")
        kernel.arguments = ["--inputfile=in.txt", "--outputfile=out.txt"]
        kernel.link_input_data = ["$SHARED/data.txt > in.txt"]
        kernel.copy_input_data = ["plain.txt"]
        kernel.copy_output_data = ["out.txt > results/out.txt"]
        description = kernel.bind("local.localhost", get_platform("local.localhost"))
        assert description.input_staging[0].action == "link"
        assert description.input_staging[0].source == "$SHARED/data.txt"
        assert description.input_staging[0].target == "in.txt"
        assert description.input_staging[1].action == "copy"
        assert description.input_staging[1].target == "plain.txt"
        assert description.output_staging[0].target == "results/out.txt"

    def test_machine_config_speed_factor_scales_duration(self):
        kernel_comet = Kernel(name="md.gromacs")
        kernel_comet.arguments = ["--nsteps=1000"]
        comet = get_platform("xsede.comet")
        desc_comet = kernel_comet.bind("xsede.comet", comet)
        kernel_generic = Kernel(name="md.gromacs")
        kernel_generic.arguments = ["--nsteps=1000"]
        desc_generic = kernel_generic.bind("unknown.machine", comet)
        # Comet's config is 1.3x vs generic 1.25x -> comet slightly faster.
        assert desc_comet.duration_model(1, comet) < desc_generic.duration_model(1, comet)

    def test_get_arg_helper(self):
        kernel = Kernel(name="misc.sleep")
        kernel.arguments = ["--duration=3"]
        assert kernel.get_arg("duration") == "3"
        assert kernel.get_arg("missing", "7") == "7"

    def test_environment_merging(self):
        class EnvKernel(KernelPlugin):
            name = "test.env"
            machine_configs = {
                "*": MachineConfig(environment={"A": "1", "B": "1"})
            }

            def execute(self, ctx):
                return None

            def duration(self, cores, platform, args):
                return 0.0

        register_kernel(EnvKernel, replace=True)
        kernel = Kernel(name="test.env")
        kernel.environment = {"B": "2"}
        description = kernel.bind("anywhere", get_platform("local.localhost"))
        assert description.environment == {"A": "1", "B": "2"}

    def test_tags_propagate(self):
        kernel = Kernel(name="misc.sleep")
        kernel.arguments = ["--duration=0"]
        kernel.tags = {"stage": 3}
        description = kernel.bind("local.localhost", get_platform("local.localhost"))
        assert description.tags["stage"] == 3
