"""CLI tests for ``python -m repro lint``, including the acceptance criteria:
the shipped tree exits 0; a seeded wall-clock call or illegal state
transition exits non-zero.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.__main__ import main

REPO_ROOT = Path(__file__).resolve().parent.parent


def _write(path, source):
    path.write_text(textwrap.dedent(source))
    return path


# -- acceptance: the shipped tree is clean ------------------------------------


def test_shipped_tree_lints_clean(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "src/repro"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_ci_invocation_src_and_tests_clean(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["lint", "src", "tests", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["new"] == 0
    assert payload["findings"] == []


# -- acceptance: seeded violations fail the build -----------------------------


def test_seeded_wall_clock_call_fails(tmp_path, capsys):
    bad = _write(
        tmp_path / "bad.py",
        """
        import time
        def stamp():
            return time.time()
        """,
    )
    assert main(["lint", str(bad), "--no-config"]) == 1
    assert "DET001" in capsys.readouterr().out


def test_seeded_illegal_transition_fails(tmp_path, capsys):
    bad = _write(
        tmp_path / "bad.py",
        """
        from repro.pilot.states import PilotState
        def finish(pilot):
            pilot.advance(PilotState.DONE)
            pilot.advance(PilotState.ACTIVE)
        """,
    )
    assert main(["lint", str(bad), "--no-config"]) == 1
    out = capsys.readouterr().out
    assert "SM002" in out and "DONE -> ACTIVE" in out


# -- report formats -----------------------------------------------------------


def test_json_report_shape(tmp_path, capsys):
    bad = _write(tmp_path / "bad.py", "import time\nx = time.time()\n")
    assert main(["lint", str(bad), "--no-config", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["new"] == 1
    finding = payload["findings"][0]
    assert finding["rule_id"] == "DET001"
    assert finding["line"] == 2
    assert finding["file"].endswith("bad.py")


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DC001", "SM002", "EVT001"):
        assert rule_id in out


# -- selection / suppression flags --------------------------------------------


def test_select_limits_rules(tmp_path, capsys):
    bad = _write(tmp_path / "bad.py", "import time\nx = time.time()\n")
    assert main(["lint", str(bad), "--no-config", "--select", "SM"]) == 0


def test_baseline_write_then_clean(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path / "bad.py", "import time\nx = time.time()\n")
    baseline = tmp_path / "baseline.json"
    assert main(
        ["lint", "bad.py", "--no-config", "--baseline", "baseline.json",
         "--write-baseline"]
    ) == 0
    assert baseline.is_file()
    assert main(
        ["lint", "bad.py", "--no-config", "--baseline", "baseline.json"]
    ) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out
    # Ignoring the baseline resurfaces the finding.
    assert main(["lint", "bad.py", "--no-config", "--no-baseline"]) == 1


def test_stale_baseline_is_reported_not_fatal(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path / "ok.py", "x = 1\n")
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "version": 1,
        "findings": {"ok.py::DET001::wall-clock call time.time()": 1},
    }))
    assert main(["lint", "ok.py", "--no-config", "--baseline", "baseline.json"]) == 0
    assert "stale baseline" in capsys.readouterr().out


# -- errors -------------------------------------------------------------------


def test_missing_path_is_usage_error(capsys):
    assert main(["lint", "does/not/exist.py", "--no-config"]) == 2
    assert "no such path" in capsys.readouterr().err


def test_missing_baseline_file_is_usage_error(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path / "ok.py", "x = 1\n")
    assert main(["lint", "ok.py", "--no-config", "--baseline", "gone.json"]) == 2
    assert "baseline file not found" in capsys.readouterr().err


def test_write_baseline_without_path_is_usage_error(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    _write(tmp_path / "ok.py", "x = 1\n")
    assert main(["lint", "ok.py", "--no-config", "--write-baseline"]) == 2


# -- config integration -------------------------------------------------------


def test_config_paths_and_baseline_are_used(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    src = tmp_path / "src"
    src.mkdir()
    _write(src / "mod.py", "import time\nx = time.time()\n")
    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro.lint]\npaths = ["src"]\nbaseline = "allow.json"\n'
    )
    assert main(["lint", "--write-baseline"]) == 0
    assert (tmp_path / "allow.json").is_file()
    assert main(["lint"]) == 0


def test_help_lists_every_subcommand(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    for command in ("platforms", "kernels", "figure", "ablation", "lint", "plan"):
        assert command in out
