"""Tests for repro.utils.ids."""

import threading

import pytest

from repro.utils.ids import generate_id, reset_id_counters


def test_ids_are_sequential_per_namespace():
    reset_id_counters("seq-test")
    assert generate_id("seq-test") == "seq-test.0000"
    assert generate_id("seq-test") == "seq-test.0001"


def test_namespaces_are_independent():
    reset_id_counters("ns-a")
    reset_id_counters("ns-b")
    generate_id("ns-a")
    assert generate_id("ns-b") == "ns-b.0000"


def test_width_controls_padding():
    reset_id_counters("wide")
    assert generate_id("wide", width=6) == "wide.000000"


def test_counter_grows_past_padding():
    reset_id_counters("overflow")
    for _ in range(10_000):
        last = generate_id("overflow")
    assert last == "overflow.9999"
    assert generate_id("overflow") == "overflow.10000"


def test_empty_namespace_rejected():
    with pytest.raises(ValueError):
        generate_id("")


def test_reset_all_counters():
    generate_id("reset-all-x")
    generate_id("reset-all-y")
    reset_id_counters()
    assert generate_id("reset-all-x").endswith(".0000")
    assert generate_id("reset-all-y").endswith(".0000")


def test_thread_safety_no_duplicates():
    reset_id_counters("threads")
    ids: list[str] = []
    lock = threading.Lock()

    def worker():
        for _ in range(200):
            uid = generate_id("threads")
            with lock:
                ids.append(uid)

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(ids) == len(set(ids)) == 1600
