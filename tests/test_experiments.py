"""Tests of the figure runners at reduced scale: every claim must hold.

The benchmarks run the paper-scale configurations; here we verify the
machinery and the qualitative shapes with small, fast parameter sets.
"""

import pytest

from repro.experiments import ablations, fig3, fig4, fig5, fig6, fig7, fig8, fig9
from repro.experiments.base import ExperimentResult


def assert_claims(result: ExperimentResult):
    failed = [claim for claim, holds in result.claims.items() if not holds]
    assert not failed, f"{result.figure}: failed claims: {failed}\n{result.report()}"


class TestFigureRunners:
    def test_fig3_small(self):
        result = fig3.run(task_counts=(8, 16, 32))
        assert_claims(result)
        assert len(result.rows) == 9  # 3 patterns x 3 sizes

    def test_fig4_small(self):
        result = fig4.run(task_counts=(8, 16))
        assert_claims(result)

    def test_fig5_small(self):
        result = fig5.run(replicas=64, core_counts=(8, 16, 32, 64))
        assert_claims(result)
        sim = result.series["simulation"]
        # Strong scaling: 2x cores -> ~0.5x sim time.
        assert sim.y[0] / sim.y[-1] == pytest.approx(8.0, rel=0.15)

    def test_fig6_small(self):
        result = fig6.run(replica_counts=(8, 16, 32, 64))
        assert_claims(result)
        exchange = result.series["exchange"]
        assert exchange.y[-1] > exchange.y[0]

    def test_fig7_small(self):
        result = fig7.run(simulations=64, core_counts=(8, 16, 32, 64))
        assert_claims(result)

    def test_fig8_small(self):
        result = fig8.run(sim_counts=(8, 16, 32, 64))
        assert_claims(result)

    def test_fig9_small(self):
        result = fig9.run(simulations=8, cores_per_sim=(1, 4, 8))
        assert_claims(result)
        sim = result.series["simulation"]
        assert sim.y[0] / sim.y[-1] == pytest.approx(8.0, rel=0.25)

    def test_reports_render(self):
        result = fig3.run(task_counts=(8,))
        text = result.report()
        assert "fig3" in text
        assert "OK" in text


class TestAblations:
    def test_pilot_vs_batch(self):
        result = ablations.pilot_vs_batch(ntasks=12, task_duration=60.0)
        assert_claims(result)

    def test_scheduler_policy(self):
        result = ablations.scheduler_policy(ntasks=12)
        assert_claims(result)

    def test_overhead_scaling(self):
        result = ablations.overhead_scaling(task_counts=(8, 32, 128))
        assert_claims(result)


class TestDeterminism:
    def test_same_seed_same_results(self):
        a = fig5.run(replicas=16, core_counts=(4, 8), seed=3)
        b = fig5.run(replicas=16, core_counts=(4, 8), seed=3)
        assert a.rows == b.rows


def test_ablation_fault_resilience_small():
    result = ablations.fault_resilience(fault_rates=(0.0, 0.2), ntasks=16)
    assert_claims(result)


def test_ablation_node_faults_small():
    from repro.experiments.fault_ablation import fault_ablation

    result = fault_ablation(node_mtbfs=(0.0, 150.0), ntasks=32, cores=64)
    assert_claims(result)
    # One baseline row plus one faulted row per policy, all complete.
    assert len(result.rows) == 3
    assert {row["policy"] for row in result.rows} == {"-", "eager", "backoff"}
    assert all(row["completed"] == 32 for row in result.rows)
    faulted = [row for row in result.rows if row["node_mtbf_s"] > 0]
    assert all(row["inflation"] >= 1.0 for row in faulted)
